// Command labcache inspects and maintains the persistent experiment-result
// cache that cmd/validate, cmd/appstudy and cmd/activemem populate through
// -cache-dir (see internal/store for the on-disk format).
//
// Usage:
//
//	labcache stats   [-dir DIR]
//	labcache ls      [-dir DIR] [-type NAME] [-n N] [-full]
//	labcache verify  [-dir DIR]
//	labcache gc      [-dir DIR] [-max-age DUR] [-max-size BYTES]
//	labcache migrate [-dir DIR]
//	labcache export  [-dir DIR] [-o FILE]
//	labcache import  [-dir DIR] [-i FILE]
//
// Every subcommand defaults -dir to $ACTIVEMEM_CACHE_DIR. verify exits
// non-zero when any record fails its checksum, gc compacts the shard
// segments (dropping stale duplicates and entries outside the age/size
// policy), migrate upgrades a legacy single-segment directory to the
// sharded layout (any read-write open — including the experiment CLIs' —
// does this automatically; the subcommand exists to do it eagerly and
// report what happened), and export/import move results between machines
// as a checksum-verified tar bundle:
//
//	machine-a$ labcache export -dir ~/.cache/activemem -o results.tar
//	machine-b$ labcache import -dir ~/.cache/activemem -i results.tar
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"activemem/internal/lab"
	"activemem/internal/store"
	"activemem/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("labcache: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		cmdStats(args)
	case "ls":
		cmdLs(args)
	case "verify":
		cmdVerify(args)
	case "gc":
		cmdGC(args)
	case "migrate":
		cmdMigrate(args)
	case "export":
		cmdExport(args)
	case "import":
		cmdImport(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: labcache <stats|ls|verify|gc|migrate|export|import> [-dir DIR] [flags]
run "labcache <subcommand> -h" for subcommand flags`)
	os.Exit(2)
}

// newFlags builds a subcommand flag set with the shared -dir flag.
func newFlags(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	dir := fs.String("dir", os.Getenv("ACTIVEMEM_CACHE_DIR"),
		"cache directory (default $ACTIVEMEM_CACHE_DIR)")
	return fs, dir
}

// open opens the store, read-only for inspection subcommands.
func open(dir string, readOnly bool) *store.Store {
	if dir == "" {
		log.Fatal("no cache directory: pass -dir or set $ACTIVEMEM_CACHE_DIR")
	}
	s, err := store.Open(dir, store.Options{Schema: lab.ResultSchemaVersion, ReadOnly: readOnly})
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func cmdStats(args []string) {
	fs, dir := newFlags("stats")
	fs.Parse(args)
	s := open(*dir, true)
	defer s.Close()
	sum := s.Stats()
	fmt.Printf("dir:     %s\n", sum.Dir)
	fmt.Printf("schema:  %s\n", sum.Schema)
	fmt.Printf("layout:  %s (%d shards)\n", sum.Layout, sum.Shards)
	fmt.Printf("entries: %d\n", sum.Entries)
	fmt.Printf("size:    %s\n", units.FormatBytes(sum.Bytes))
	if sum.Entries > 0 {
		fmt.Printf("oldest:  %s\n", sum.Oldest.Format(time.RFC3339))
		fmt.Printf("newest:  %s\n", sum.Newest.Format(time.RFC3339))
	}
	types := make([]string, 0, len(sum.PerType))
	for t := range sum.PerType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-24s %d\n", t, sum.PerType[t])
	}
	// Operation counters for this open: stats itself does a shard scan, so
	// the numbers show what inspecting the store cost (the campaign CLIs
	// print their own cumulative "store:" epilogue line; see also /statusz
	// under -telemetry).
	ops := s.Counters()
	fmt.Printf("ops (this open):\n")
	fmt.Printf("  gets=%d puts=%d hot_hits=%d snapshot_hits=%d slow_gets=%d\n",
		ops.Gets, ops.Puts, ops.HotHits, ops.SnapshotHits, ops.SlowGets)
	fmt.Printf("  mutex_acqs=%d flock_acqs=%d group_commits=%d grouped_appends=%d\n",
		ops.MutexAcqs, ops.FlockAcqs, ops.GroupCommits, ops.GroupedAppends)
}

func cmdLs(args []string) {
	fs, dir := newFlags("ls")
	typeFilter := fs.String("type", "", "only list entries of this result type")
	limit := fs.Int("n", 0, "list at most N entries (0 = all)")
	full := fs.Bool("full", false, "print full keys instead of a 12-character prefix")
	fs.Parse(args)
	s := open(*dir, true)
	defer s.Close()
	n := 0
	for _, e := range s.Entries() {
		if *typeFilter != "" && e.Type != *typeFilter {
			continue
		}
		if *limit > 0 && n >= *limit {
			fmt.Println("...")
			break
		}
		key := e.Key
		if !*full && len(key) > 12 {
			key = key[:12] + "…"
		}
		fmt.Printf("%-14s %-24s %8s  %s\n", key, e.Type,
			units.FormatBytes(int64(e.PayloadBytes)), e.Stamp.Format(time.RFC3339))
		n++
	}
}

func cmdVerify(args []string) {
	fs, dir := newFlags("verify")
	fs.Parse(args)
	// verify has a pinned exit-code contract for scripts and CI: 0 means
	// every reachable record (segments and commit log) checks out, 1 means
	// corruption was found, 2 means the store could not be read at all. It
	// therefore opens the store itself instead of going through open(),
	// whose log.Fatal would fold I/O errors into exit 1.
	if *dir == "" {
		log.Println("no cache directory: pass -dir or set $ACTIVEMEM_CACHE_DIR")
		os.Exit(2)
	}
	s, err := store.Open(*dir, store.Options{Schema: lab.ResultSchemaVersion, ReadOnly: true})
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	defer s.Close()
	res, err := s.Verify()
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	fmt.Printf("records: %d (%d live, %d superseded)\n", res.Records, res.Live,
		res.Records-res.Live-res.Corrupt)
	fmt.Printf("corrupt: %d\n", res.Corrupt)
	if res.LogRecords > 0 || res.LogCorrupt > 0 {
		fmt.Printf("commit log: %d records (%d reachable only here), %d corrupt (a read-write open replays and truncates it)\n",
			res.LogRecords, res.LogLive, res.LogCorrupt)
	}
	if res.GarbageBytes > 0 {
		fmt.Printf("garbage: %s of unparseable mid-segment bytes (gc will drop them)\n",
			units.FormatBytes(res.GarbageBytes))
	}
	if res.TornBytes > 0 {
		fmt.Printf("torn tail: %s (a read-write open will truncate it)\n",
			units.FormatBytes(res.TornBytes))
	}
	if res.Corrupt > 0 || res.LogCorrupt > 0 || res.TornBytes > 0 || res.GarbageBytes > 0 {
		os.Exit(1)
	}
	fmt.Println("ok")
}

func cmdGC(args []string) {
	fs, dir := newFlags("gc")
	maxAge := fs.Duration("max-age", 0, "evict entries older than this (0 = keep all ages)")
	maxSize := fs.Int64("max-size", 0, "evict oldest entries until this many bytes remain (0 = unbounded)")
	fs.Parse(args)
	s := open(*dir, false)
	defer s.Close()
	res, err := s.GC(store.GCPolicy{MaxAge: *maxAge, MaxBytes: *maxSize})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kept %d entries, evicted %d; segment %s -> %s\n",
		res.Kept, res.Evicted, units.FormatBytes(res.BytesBefore), units.FormatBytes(res.BytesAfter))
}

func cmdMigrate(args []string) {
	fs, dir := newFlags("migrate")
	fs.Parse(args)
	s := open(*dir, false)
	defer s.Close()
	migrated, n := s.MigratedOnOpen()
	sum := s.Stats()
	switch {
	case migrated:
		fmt.Printf("migrated %d entries to the sharded layout (%d shards)\n", n, sum.Shards)
	case s.ResetOnOpen():
		fmt.Println("store was stale (schema or layout mismatch); reset to an empty sharded store")
	default:
		fmt.Printf("already on layout %s (%d shards), %d entries; nothing to do\n",
			sum.Layout, sum.Shards, sum.Entries)
	}
}

func cmdExport(args []string) {
	fs, dir := newFlags("export")
	out := fs.String("o", "", "bundle file to write (default stdout)")
	fs.Parse(args)
	s := open(*dir, true)
	defer s.Close()
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			log.Fatal(err)
		}
		w = f
	}
	n, err := s.Export(w)
	if err != nil {
		log.Fatal(err)
	}
	// A failed close means buffered bytes never reached the disk: the
	// bundle is truncated, so report it instead of claiming success.
	if f != nil {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "exported %d entries\n", n)
}

func cmdImport(args []string) {
	fs, dir := newFlags("import")
	in := fs.String("i", "", "bundle file to read (default stdin)")
	fs.Parse(args)
	s := open(*dir, false)
	defer s.Close()
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	added, skipped, err := s.Import(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "imported %d entries (%d already present)\n", added, skipped)
}
