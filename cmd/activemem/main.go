// Command activemem measures a workload's memory resource consumption with
// the Active Measurement methodology: it sweeps storage (CSThr) and
// bandwidth (BWThr) interference, reports the degradation curves, derives a
// resource profile, and optionally predicts performance on a hypothetical
// machine.
//
// Usage:
//
//	activemem [-workload uniform|norm4|norm8|exp4|pchase] [-buf BYTES]
//	          [-compute N] [-scale N] [-threshold F] [-j N] [-progress]
//	          [-predict-l3 MB] [-predict-bw GBS] [-seed N]
//	          [-cache-dir DIR] [-cache-mem BYTES] [-cache-url URL]
//	          [-worker-of URL] [-knee F] [-knee-patience M]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -knee switches the interference sweeps to adaptive mode: levels run in
// ascending order and stop once the slowdown exceeds the given threshold
// for -knee-patience consecutive levels, skipping deep-interference cells
// when only the degradation knee is wanted. -cache-dir persists every
// measured cell so repeated invocations (or other commands sharing the
// directory) skip simulation; -cache-url (or $ACTIVEMEM_CACHE_URL) adds a
// shared labcached server as a best-effort remote tier; -worker-of (or
// $ACTIVEMEM_FLEET_URL) joins a distributed campaign as one worker of
// the fleet coordinator at that URL. SIGINT/SIGTERM
// drain in-flight cells, sync the cache tiers and exit 130.
//
// Example:
//
//	activemem -workload uniform -buf 8388608 -compute 10 -scale 8 \
//	          -predict-l3 1.25 -predict-bw 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/prof"
	"activemem/internal/report"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/pchase"
	"activemem/internal/workload/synthetic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("activemem: ")
	var (
		workload  = flag.String("workload", "uniform", "workload: uniform, norm4, norm8, exp4 or pchase")
		buf       = flag.Int64("buf", 0, "workload buffer bytes (default: 2x the machine's L3)")
		compute   = flag.Int("compute", 1, "integer adds per load (synthetic workloads)")
		scale     = flag.Int("scale", 8, "machine scale divisor (1 = full Xeon20MB)")
		threshold = flag.Float64("threshold", 0.05, "slowdown threshold defining the degradation knee")
		predictL3 = flag.Float64("predict-l3", 0, "predict slowdown with this much L3 (MB, 0 = skip)")
		predictBW = flag.Float64("predict-bw", 0, "predict slowdown with this much bandwidth (GB/s)")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		jobs      = flag.Int("j", 0, "parallel experiment cells (0 = all CPUs, 1 = serial)")
		progress  = flag.Bool("progress", false, "report per-batch experiment progress on stderr")
		cacheDir  = flag.String("cache-dir", os.Getenv("ACTIVEMEM_CACHE_DIR"),
			"persist results to this on-disk store and resume from it (default $ACTIVEMEM_CACHE_DIR)")
		cacheMem = flag.Int64("cache-mem", -1,
			"in-memory hot-set budget for the cache in bytes, 0 to disable (default $ACTIVEMEM_CACHE_MEM or 64MiB)")
		cacheURL = flag.String("cache-url", os.Getenv("ACTIVEMEM_CACHE_URL"),
			"also consult a labcached server at this URL as a best-effort remote tier (default $ACTIVEMEM_CACHE_URL)")
		workerOf = flag.String("worker-of", os.Getenv("ACTIVEMEM_FLEET_URL"),
			"run as one worker of the fleet coordinator at this URL (default $ACTIVEMEM_FLEET_URL); implies -cache-url there unless set")
		knee     = flag.Float64("knee", 0, "adaptive sweeps: stop past this slowdown threshold (0 = measure every level)")
		patience = flag.Int("knee-patience", 2, "consecutive over-threshold levels that stop an adaptive sweep")
	)
	profFlags := prof.RegisterFlags()
	telemetryAddr := lab.RegisterTelemetryFlag()
	flag.Parse()

	stopProf, err := profFlags.Start()
	check(err)
	defer stopProf()

	// An adaptive sweep must measure at least as deep as the profile's
	// knee search looks: a sweep stopped at a shallower slowdown would
	// make the profile's "never degraded" branch claim bounds the skipped
	// levels were never allowed to refute.
	if *knee > 0 && *knee < *threshold {
		log.Printf("warning: -knee %g is below -threshold %g; using %g", *knee, *threshold, *threshold)
		*knee = *threshold
	}

	if *cacheMem < 0 {
		*cacheMem = lab.HotBytesFromEnv()
	}
	cache, err := lab.OpenCacheSized(*cacheDir, *cacheMem)
	check(err)
	if cache != nil {
		defer cache.Close()
	}
	// A fleet worker publishes results through the shared cache its peers
	// read from; the coordinator address doubles as that cache unless the
	// operator split them explicitly (labcached -coord serves both).
	if *workerOf != "" && *cacheURL == "" {
		*cacheURL = *workerOf
	}
	rc, err := lab.OpenRemote(*cacheURL)
	check(err)
	defer rc.Close()
	fc, err := lab.OpenFleet(*workerOf)
	check(err)
	if fc != nil {
		defer fc.Close()
	}
	ex := lab.New(lab.Config{Workers: *jobs, Progress: lab.StderrProgress(*progress),
		Cache: cache, Remote: rc, Fleet: fc})
	defer ex.Close()
	stopSignals := lab.NotifyShutdown(ex, os.Stderr)
	defer stopSignals()
	// The fatal path (check) bypasses the defers above; drain and sync the
	// tiers there too, so even an interrupted or failed campaign leaves its
	// finished cells checkpointed rather than waiting on log replay.
	cleanup = func() {
		ex.Close()
		ex.PrintCacheSummary(os.Stderr)
		if fc != nil {
			fc.Close()
		}
		rc.Close()
		if cache != nil {
			cache.Close()
		}
	}
	stopTelemetry, err := lab.StartTelemetry(*telemetryAddr, ex, os.Stderr)
	check(err)
	defer stopTelemetry()
	spec := machine.Scaled(*scale)
	if *buf == 0 {
		*buf = spec.L3.Size * 2
	}
	fmt.Println(spec.TableI())

	factory, name := buildWorkload(*workload, *buf, *compute, spec)
	cfg := core.MeasureConfig{
		Spec:   spec,
		Warmup: 30_000_000 * units.Cycles(8/clampScale(*scale)),
		Window: 12_000_000 * units.Cycles(8/clampScale(*scale)),
		Seed:   *seed,
	}

	fmt.Printf("measuring %s (buffer %s, %d adds/load)...\n\n",
		name, units.FormatBytes(*buf), *compute)

	storage, err := core.RunSweep(core.SweepConfig{
		MeasureConfig: cfg, Kind: core.Storage, MaxThreads: 5, Exec: ex,
		Knee: *knee, KneePatience: *patience,
	}, name, factory)
	check(err)
	bandwidth, err := core.RunSweep(core.SweepConfig{
		MeasureConfig: cfg, Kind: core.Bandwidth, MaxThreads: 2, Exec: ex,
		Knee: *knee, KneePatience: *patience,
	}, name, factory)
	check(err)

	printSweep("storage interference (CSThr)", storage)
	printSweep("bandwidth interference (BWThr)", bandwidth)

	// Availability tables for the profile.
	bufs, _ := core.DefaultCalibrationGrid(spec, 2)
	ds := core.Table2Constructors()
	capCal, err := core.CalibrateCapacity(core.CalibrationConfig{
		MeasureConfig: cfg, MaxThreads: 5, BufferBytes: bufs,
		Dists:          []func(int64) dist.Dist{ds[9]},
		ComputePerLoad: 1, ElemSize: 4, Exec: ex,
	})
	check(err)
	bwCal, err := core.CalibrateBandwidth(core.MeasureConfig{
		Spec: spec, Warmup: 2_000_000, Window: 6_000_000, Seed: *seed,
	}, 2, interfere.BWConfig{}, ex)
	check(err)

	prof, err := core.BuildProfile(name, 1, *threshold,
		storage, capCal.AvailableBytes(), bandwidth, bwCal.AvailableGBs)
	check(err)
	fmt.Println(prof.String())

	if *predictL3 > 0 || *predictBW > 0 {
		l3 := *predictL3 * float64(units.MB)
		if l3 == 0 {
			l3 = float64(spec.L3.Size)
		}
		bw := *predictBW
		if bw == 0 {
			bw = spec.PeakBandwidthGBs()
		}
		s := prof.PredictSlowdown(l3, bw)
		fmt.Printf("predicted slowdown with %.2f MB L3 and %.2f GB/s: %.1f%%\n",
			l3/float64(units.MB), bw, s*100)
	}
	ex.PrintCacheSummary(os.Stderr)
	if *progress {
		ex.PrintPoolSummary(os.Stderr)
	}
}

func clampScale(s int) units.Cycles {
	if s > 8 {
		return 8
	}
	if s < 1 {
		return 1
	}
	return units.Cycles(s)
}

func buildWorkload(kind string, buf int64, compute int, spec machine.Spec) (core.WorkloadFactory, string) {
	mkDist := func(mk func(int64) dist.Dist) core.WorkloadFactory {
		return func(alloc *mem.Alloc, seed uint64) engine.Workload {
			return synthetic.New(synthetic.Config{
				Dist: mk(buf / 4), ElemSize: 4, ComputePerLoad: compute,
			}, alloc)
		}
	}
	switch kind {
	case "uniform":
		return mkDist(func(n int64) dist.Dist { return dist.NewUniform(n) }), "uniform"
	case "norm4":
		return mkDist(func(n int64) dist.Dist { return dist.NewNormal(n, 4) }), "norm4"
	case "norm8":
		return mkDist(func(n int64) dist.Dist { return dist.NewNormal(n, 8) }), "norm8"
	case "exp4":
		return mkDist(func(n int64) dist.Dist { return dist.NewExponential(n, 4) }), "exp4"
	case "pchase":
		return func(alloc *mem.Alloc, seed uint64) engine.Workload {
			return pchase.New(pchase.Config{
				BufBytes: buf, LineSize: spec.LineSize(), Seed: seed,
			}, alloc)
		}, "pchase"
	default:
		log.Fatalf("unknown workload %q", kind)
		return nil, ""
	}
}

func printSweep(title string, s core.Sweep) {
	t := report.NewTable(title, "threads", "work/s", "slowdown", "app L3 miss", "app GB/s", "bus util")
	sl := s.Slowdowns()
	for k, p := range s.Points {
		t.Addf(k, p.Rate, fmt.Sprintf("%+.1f%%", sl[k]*100), p.L3MissRate, p.AppGBs, p.BusUtil)
	}
	fmt.Println(t.String())
	lastOK, firstDeg := s.Knee(0.05)
	fmt.Printf("  knee: no degradation through %d threads; first degradation at %d\n\n",
		lastOK, firstDeg)
}

// cleanup, when set, drains the executor and syncs the cache tiers; the
// fatal exits below run it because log.Fatal/os.Exit skip the defers.
var cleanup func()

func check(err error) {
	if err == nil {
		return
	}
	if cleanup != nil {
		cleanup()
	}
	if errors.Is(err, lab.ErrInterrupted) {
		log.Println("interrupted: finished cells are persisted; rerun with the same flags to resume")
		os.Exit(130)
	}
	log.Fatal(err)
}
