// Command appstudy regenerates the paper's parallel application studies
// (§IV): the MCB degradation panels (Fig. 9) and per-process resource
// consumption (Fig. 10), and the Lulesh equivalents (Figs. 11-12).
//
// Usage:
//
//	appstudy [-app mcb|lulesh|both] [-scale N] [-grid smoke|quick|paper]
//	         [-seed N] [-j N] [-progress] [-csvdir DIR] [-cache-dir DIR] [-cache-mem BYTES]
//	         [-cache-url URL] [-worker-of URL] [-cpuprofile FILE] [-memprofile FILE]
//
// The default -scale 8 runs a 1/8-geometry Xeon20MB with proportionally
// scaled inputs (see DESIGN.md); the printed profiles include the ×scale
// full-machine equivalents. -scale 1 runs the full geometry (slow).
// -cache-url (or $ACTIVEMEM_CACHE_URL) adds a shared labcached server as a
// best-effort remote tier; -worker-of (or $ACTIVEMEM_FLEET_URL) joins a
// distributed campaign as one worker of the fleet coordinator at that URL.
// SIGINT/SIGTERM drain in-flight cells, sync the
// cache tiers and exit 130; a second signal exits immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"activemem/internal/experiments"
	"activemem/internal/lab"
	"activemem/internal/prof"
	"activemem/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("appstudy: ")
	var (
		app      = flag.String("app", "both", "application: mcb, lulesh or both")
		scale    = flag.Int("scale", 8, "machine scale divisor (power of two; 1 = full Xeon20MB)")
		grid     = flag.String("grid", "quick", "experiment size: smoke, quick or paper")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		jobs     = flag.Int("j", 0, "parallel experiment cells (0 = all CPUs, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-batch experiment progress on stderr")
		csvdir   = flag.String("csvdir", "", "also write each table as CSV into this directory")
		cacheDir = flag.String("cache-dir", os.Getenv("ACTIVEMEM_CACHE_DIR"),
			"persist results to this on-disk store and resume from it (default $ACTIVEMEM_CACHE_DIR)")
		cacheMem = flag.Int64("cache-mem", -1,
			"in-memory hot-set budget for the cache in bytes, 0 to disable (default $ACTIVEMEM_CACHE_MEM or 64MiB)")
		cacheURL = flag.String("cache-url", os.Getenv("ACTIVEMEM_CACHE_URL"),
			"also consult a labcached server at this URL as a best-effort remote tier (default $ACTIVEMEM_CACHE_URL)")
		workerOf = flag.String("worker-of", os.Getenv("ACTIVEMEM_FLEET_URL"),
			"run as one worker of the fleet coordinator at this URL (default $ACTIVEMEM_FLEET_URL); implies -cache-url there unless set")
	)
	profFlags := prof.RegisterFlags()
	telemetryAddr := lab.RegisterTelemetryFlag()
	flag.Parse()

	stopProf, err := profFlags.Start()
	check(err)
	defer stopProf()

	// One executor for the whole study: its memo cache deduplicates the
	// shared baselines and the p=1 sweeps repeated by the size panels; the
	// optional disk tier shares them across runs (e.g. with cmd/validate's
	// calibrations) and machines.
	if *cacheMem < 0 {
		*cacheMem = lab.HotBytesFromEnv()
	}
	cache, err := lab.OpenCacheSized(*cacheDir, *cacheMem)
	check(err)
	if cache != nil {
		defer cache.Close()
	}
	// A fleet worker publishes results through the shared cache its peers
	// read from; the coordinator address doubles as that cache unless the
	// operator split them explicitly (labcached -coord serves both).
	if *workerOf != "" && *cacheURL == "" {
		*cacheURL = *workerOf
	}
	rc, err := lab.OpenRemote(*cacheURL)
	check(err)
	defer rc.Close()
	fc, err := lab.OpenFleet(*workerOf)
	check(err)
	if fc != nil {
		defer fc.Close()
	}
	ex := lab.New(lab.Config{Workers: *jobs, Progress: lab.StderrProgress(*progress),
		Cache: cache, Remote: rc, Fleet: fc})
	defer ex.Close()
	stopSignals := lab.NotifyShutdown(ex, os.Stderr)
	defer stopSignals()
	// The fatal path (check) bypasses the defers above; drain and sync the
	// tiers there too, so even an interrupted or failed campaign leaves its
	// finished cells checkpointed rather than waiting on log replay.
	cleanup = func() {
		ex.Close()
		ex.PrintCacheSummary(os.Stderr)
		if fc != nil {
			fc.Close()
		}
		rc.Close()
		if cache != nil {
			cache.Close()
		}
	}
	stopTelemetry, err := lab.StartTelemetry(*telemetryAddr, ex, os.Stderr)
	check(err)
	defer stopTelemetry()
	opt := experiments.Options{
		Scale: *scale,
		Grid:  parseGrid(*grid),
		Exec:  ex,
		Seed:  *seed,
	}
	fmt.Println(opt.ScaleNote())
	fmt.Printf("grid: %s\n\n", opt.Grid)

	fmt.Println("calibrating interference availability tables (§III-A, §III-C3)...")
	capAvail, bwAvail, err := experiments.StudyCalibrations(opt)
	check(err)
	fmt.Print(calibrationSummary(capAvail, bwAvail))

	emit := func(name string, t *report.Table) {
		fmt.Println(t.String())
		if *csvdir != "" {
			check(writeCSV(*csvdir, name, t))
		}
	}

	if *app == "mcb" || *app == "both" {
		study, err := experiments.Fig9MCB(opt)
		check(err)
		for i, t := range study.Tables() {
			emit(fmt.Sprintf("fig9_panel%d", i+1), t)
		}
		prof, err := experiments.BuildProfiles(opt, study, capAvail, bwAvail, 0.05)
		check(err)
		emit("fig10", prof.Table())
	}
	if *app == "lulesh" || *app == "both" {
		study, err := experiments.Fig11Lulesh(opt)
		check(err)
		for i, t := range study.Tables() {
			emit(fmt.Sprintf("fig11_panel%d", i+1), t)
		}
		prof, err := experiments.BuildProfiles(opt, study, capAvail, bwAvail, 0.05)
		check(err)
		emit("fig12", prof.Table())
	}
	ex.PrintCacheSummary(os.Stderr)
	if *progress {
		ex.PrintPoolSummary(os.Stderr)
	}
}

func calibrationSummary(capAvail, bwAvail []float64) string {
	var b strings.Builder
	b.WriteString("effective L3 per CSThr count (MB):")
	for _, v := range capAvail {
		fmt.Fprintf(&b, " %.2f", v/(1<<20))
	}
	b.WriteString("\navailable GB/s per BWThr count:  ")
	for _, v := range bwAvail {
		fmt.Fprintf(&b, " %.2f", v)
	}
	b.WriteString("\n\n")
	return b.String()
}

func parseGrid(s string) experiments.Grid {
	switch s {
	case "smoke":
		return experiments.GridSmoke
	case "quick":
		return experiments.GridQuick
	case "paper":
		return experiments.GridPaper
	default:
		log.Fatalf("unknown grid %q (want smoke, quick or paper)", s)
		return experiments.GridQuick
	}
}

// cleanup, when set, drains the executor and syncs the cache tiers; the
// fatal exits below run it because log.Fatal/os.Exit skip the defers.
var cleanup func()

func check(err error) {
	if err == nil {
		return
	}
	if cleanup != nil {
		cleanup()
	}
	if errors.Is(err, lab.ErrInterrupted) {
		log.Println("interrupted: finished cells are persisted; rerun with the same flags to resume")
		os.Exit(130)
	}
	log.Fatal(err)
}

func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
