// Command validate regenerates the paper's validation section (§III):
// Tables I-II, the §III-A bandwidth calibration, the Fig. 5 model-error
// evaluation, the Fig. 6 effective-capacity panels and the Fig. 7/8
// orthogonality checks.
//
// Usage:
//
//	validate [-scale N] [-grid smoke|quick|paper] [-fig all|table1,table2,3a,5,6,7,8]
//	         [-seed N] [-j N] [-progress] [-csvdir DIR] [-cache-dir DIR] [-cache-mem BYTES]
//	         [-cache-url URL] [-worker-of URL] [-cpuprofile FILE] [-memprofile FILE]
//
// The default -scale 1 runs the full Xeon20MB geometry. -grid paper runs
// the paper's complete 660-configuration synthetic grid (slow at scale 1).
// With -cache-dir (or $ACTIVEMEM_CACHE_DIR) every finished cell persists to
// an on-disk result store, so an interrupted campaign resumes with only the
// missing cells simulated; see cmd/labcache for inspecting the store. With
// -cache-url (or $ACTIVEMEM_CACHE_URL) a shared labcached server is
// consulted after the local tiers, best-effort; see cmd/labcached. With
// -worker-of (or $ACTIVEMEM_FLEET_URL) this process joins a distributed
// campaign as one lease-holding worker of the fleet coordinator at that
// URL (labcached -coord or labcoord); N such processes split the grid
// and each still prints the full, byte-identical report.
//
// SIGINT/SIGTERM shut down gracefully: no new cells dispatch, in-flight
// cells drain and persist, the cache tiers sync, and the process exits
// 130. A second signal exits immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"activemem/internal/experiments"
	"activemem/internal/lab"
	"activemem/internal/prof"
	"activemem/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	var (
		scale    = flag.Int("scale", 1, "machine scale divisor (power of two; 1 = full Xeon20MB)")
		grid     = flag.String("grid", "quick", "experiment size: smoke, quick or paper")
		figs     = flag.String("fig", "all", "comma-separated figures: table1,table2,3a,5,6,7,8 or all")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		jobs     = flag.Int("j", 0, "parallel experiment cells (0 = all CPUs, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-batch experiment progress on stderr")
		csvdir   = flag.String("csvdir", "", "also write each table as CSV into this directory")
		cacheDir = flag.String("cache-dir", os.Getenv("ACTIVEMEM_CACHE_DIR"),
			"persist results to this on-disk store and resume from it (default $ACTIVEMEM_CACHE_DIR)")
		cacheMem = flag.Int64("cache-mem", -1,
			"in-memory hot-set budget for the cache in bytes, 0 to disable (default $ACTIVEMEM_CACHE_MEM or 64MiB)")
		cacheURL = flag.String("cache-url", os.Getenv("ACTIVEMEM_CACHE_URL"),
			"also consult a labcached server at this URL as a best-effort remote tier (default $ACTIVEMEM_CACHE_URL)")
		workerOf = flag.String("worker-of", os.Getenv("ACTIVEMEM_FLEET_URL"),
			"run as one worker of the fleet coordinator at this URL (default $ACTIVEMEM_FLEET_URL); implies -cache-url there unless set")
	)
	profFlags := prof.RegisterFlags()
	telemetryAddr := lab.RegisterTelemetryFlag()
	flag.Parse()

	stopProf, err := profFlags.Start()
	check(err)
	defer stopProf()

	// One executor for every figure: its memo cache deduplicates identical
	// cells across figures (Fig. 5's grid is the k=0 slice of Fig. 6's),
	// and the optional disk tier shares them across runs and machines.
	if *cacheMem < 0 {
		*cacheMem = lab.HotBytesFromEnv()
	}
	cache, err := lab.OpenCacheSized(*cacheDir, *cacheMem)
	check(err)
	if cache != nil {
		defer cache.Close()
	}
	// A fleet worker publishes results through the shared cache its peers
	// read from; the coordinator address doubles as that cache unless the
	// operator split them explicitly (labcached -coord serves both).
	if *workerOf != "" && *cacheURL == "" {
		*cacheURL = *workerOf
	}
	rc, err := lab.OpenRemote(*cacheURL)
	check(err)
	defer rc.Close()
	fc, err := lab.OpenFleet(*workerOf)
	check(err)
	if fc != nil {
		defer fc.Close()
	}
	ex := lab.New(lab.Config{Workers: *jobs, Progress: lab.StderrProgress(*progress),
		Cache: cache, Remote: rc, Fleet: fc})
	defer ex.Close()
	stopSignals := lab.NotifyShutdown(ex, os.Stderr)
	defer stopSignals()
	// The fatal path (check) bypasses the defers above; drain and sync the
	// tiers there too, so even an interrupted or failed campaign leaves its
	// finished cells checkpointed rather than waiting on log replay.
	cleanup = func() {
		ex.Close()
		ex.PrintCacheSummary(os.Stderr)
		if fc != nil {
			fc.Close()
		}
		rc.Close()
		if cache != nil {
			cache.Close()
		}
	}
	stopTelemetry, err := lab.StartTelemetry(*telemetryAddr, ex, os.Stderr)
	check(err)
	defer stopTelemetry()
	opt := experiments.Options{
		Scale: *scale,
		Grid:  parseGrid(*grid),
		Exec:  ex,
		Seed:  *seed,
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	emit := func(name string, t *report.Table) {
		fmt.Println(t.String())
		if *csvdir != "" {
			if err := writeCSV(*csvdir, name, t); err != nil {
				log.Fatalf("csv: %v", err)
			}
		}
	}

	fmt.Println(opt.ScaleNote())
	fmt.Printf("grid: %s\n\n", opt.Grid)

	if all || want["table1"] {
		fmt.Println(experiments.TableI(opt))
	}
	if all || want["table2"] {
		emit("table2", experiments.TableII(opt))
	}
	if all || want["3a"] {
		r, err := experiments.SecIIIA(opt)
		check(err)
		emit("sec3a", r.Table())
	}
	if all || want["5"] {
		r, err := experiments.Fig5(opt)
		check(err)
		emit("fig5", r.Table())
	}
	if all || want["6"] {
		r, err := experiments.Fig6(opt)
		check(err)
		for i, t := range r.Tables() {
			emit(fmt.Sprintf("fig6_c%d", r.Computes[i]), t)
		}
	}
	if all || want["7"] {
		r, err := experiments.Fig7(opt)
		check(err)
		emit("fig7", r.Table())
	}
	if all || want["8"] {
		r, err := experiments.Fig8(opt)
		check(err)
		emit("fig8", r.Table())
	}
	ex.PrintCacheSummary(os.Stderr)
	if *progress {
		ex.PrintPoolSummary(os.Stderr)
	}
}

func parseGrid(s string) experiments.Grid {
	switch s {
	case "smoke":
		return experiments.GridSmoke
	case "quick":
		return experiments.GridQuick
	case "paper":
		return experiments.GridPaper
	default:
		log.Fatalf("unknown grid %q (want smoke, quick or paper)", s)
		return experiments.GridQuick
	}
}

// cleanup, when set, drains the executor and syncs the cache tiers; the
// fatal exits below run it because log.Fatal/os.Exit skip the defers.
var cleanup func()

func check(err error) {
	if err == nil {
		return
	}
	if cleanup != nil {
		cleanup()
	}
	if errors.Is(err, lab.ErrInterrupted) {
		log.Println("interrupted: finished cells are persisted; rerun with the same flags to resume")
		os.Exit(130)
	}
	log.Fatal(err)
}

func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
