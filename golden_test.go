package activemem

// Golden determinism tests: these snapshots pin the simulator's emitted
// counters for fixed seeds, so that hot-path rewrites (SoA cache layout,
// scheduler changes, batched access paths) are provably bit-identical.
// The goldens were captured before the PR 2 hot-path overhaul and must
// never change without an explicit semantic change to the simulator.
//
// If a golden fails, the diff IS the bug: tie-break order, RNG draw order
// (including PolicyRandom victims) or counter accounting drifted.

import (
	"fmt"
	"strings"
	"testing"

	"activemem/internal/apps/lulesh"
	"activemem/internal/apps/mcb"
	"activemem/internal/cluster"
	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/pchase"
	"activemem/internal/workload/stream"
	"activemem/internal/workload/synthetic"
)

// snapshotCounters renders every per-core counter block plus the shared L3
// and bus statistics in a stable textual form.
func snapshotCounters(h *mem.Hierarchy, cores int) string {
	var b strings.Builder
	for c := 0; c < cores; c++ {
		ctr := h.PerCore[c]
		fmt.Fprintf(&b, "core%d L=%d S=%d L1=%d L2=%d L3=%d Mem=%d Bytes=%d Wait=%d Pf=%d\n",
			c, ctr.Loads, ctr.Stores, ctr.L1Hits, ctr.L2Hits, ctr.L3Hits,
			ctr.MemAccs, ctr.BusBytes, ctr.BusWaitCycles, ctr.Prefetches)
	}
	s := h.L3.Stats
	fmt.Fprintf(&b, "L3 hits=%d miss=%d evict=%d wb=%d inval=%d occ=%d\n",
		s.Hits, s.Misses, s.Evictions, s.Writebacks, s.Invalidations, h.L3.Occupancy())
	bs := h.Bus.Stats
	fmt.Fprintf(&b, "bus req=%d bytes=%d busy=%d wait=%d\n",
		bs.Requests, bs.Bytes, bs.BusyCycles, bs.WaitCycles)
	return b.String()
}

// goldenMixedSocket is the counter snapshot of a five-workload socket: the
// full interleaving of synthetic, CSThr, BWThr, pchase and stream through
// the shared L3 and bus, warmup 1M cycles, window 2M cycles, seed 1.
const goldenMixedSocket = `core0 L=8198 S=0 L1=4 L2=40 L3=391 Mem=7763 Bytes=575744 Wait=222606 Pf=0
core1 L=16912 S=16912 L1=17055 L2=959 L3=9098 Mem=6712 Bytes=485760 Wait=58464 Pf=6
core2 L=33924 S=0 L1=0 L2=81 L3=933 Mem=32910 Bytes=2827200 Wait=12732 Pf=5362
core3 L=7822 S=0 L1=0 L2=0 L3=0 Mem=7822 Bytes=578112 Wait=232060 Pf=0
core4 L=102240 S=51120 L1=134190 L2=4505 L3=0 Mem=14665 Bytes=1362752 Wait=323136 Pf=4509
L3 hits=10422 miss=69872 evict=76821 wb=11338 inval=0 occ=40960
bus req=91087 bytes=5829568 busy=910870 wait=997463
`

func TestGoldenMixedSocketCounters(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())

	e.PlaceDaemon(0, synthetic.New(synthetic.Config{
		Dist: dist.NewNormal(spec.L3.Size*2/4, 4), ElemSize: 4, ComputePerLoad: 1,
	}, alloc), 2)
	e.PlaceDaemon(1, interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc), 3)
	e.PlaceDaemon(2, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 4)
	e.PlaceDaemon(3, pchase.New(pchase.Config{
		BufBytes: spec.L3.Size * 4, LineSize: spec.LineSize(), Seed: 5,
	}, alloc), 5)
	e.PlaceDaemon(4, stream.New(stream.Config{
		ArrayBytes: spec.L3.Size * 2, ElemSize: 8, BatchElems: 16,
	}, alloc), 6)

	e.RunUntil(1_000_000)
	h.ResetStats()
	e.RunUntil(3_000_000)

	got := snapshotCounters(h, 5)
	if got != goldenMixedSocket {
		t.Errorf("mixed-socket counters drifted.\ngot:\n%s\nwant:\n%s", got, goldenMixedSocket)
	}
}

// goldenRandomPolicy pins the RNG victim draw order of PolicyRandom (and the
// FIFO insertion-order scan) under eviction pressure.
const goldenRandomPolicy = `core0 L=16000 S=16000 L1=16131 L2=882 L3=10564 Mem=4423 Bytes=299008 Wait=28910 Pf=8
core1 L=25432 S=0 L1=0 L2=58 L3=1585 Mem=23789 Bytes=1872448 Wait=3210 Pf=3509
L3 hits=12149 miss=28212 evict=14101 wb=2157 inval=0 occ=40960
bus req=33929 bytes=2171456 busy=339290 wait=34735
csheld=6303
`

func TestGoldenRandomPolicyCounters(t *testing.T) {
	spec := machine.Scaled(8)
	spec.L3.Policy = mem.PolicyRandom
	spec.L2.Policy = mem.PolicyFIFO
	h := spec.NewSocket(7)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())

	cs := interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, cs, 8)
	e.PlaceDaemon(1, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 9)

	e.RunUntil(1_000_000)
	h.ResetStats()
	e.RunUntil(2_500_000)

	lo, hi := cs.BufferRange(spec.LineSize())
	got := snapshotCounters(h, 2) +
		fmt.Sprintf("csheld=%d\n", h.L3.CountLinesIn(lo, hi))
	if got != goldenRandomPolicy {
		t.Errorf("random-policy counters drifted.\ngot:\n%s\nwant:\n%s", got, goldenRandomPolicy)
	}
}

// goldenPrefetcher pins the prefetcher's training decisions across its two
// nearest-scan regimes: the default 32-stream configuration (served by the
// bucketed stream index) and an 8-stream configuration (served by the linear
// fallback scan). The workload mix covers every Observe path — sequential
// triad streams that lock and emit, a peaked-normal sampler that retrains,
// and a pointer chase whose random misses thrash the allocation path — so a
// drifted tie-break, stamp width or index bucket boundary shows up as a
// counter diff here.
const goldenPrefetcher = `streams=32
core0 L=63872 S=31936 L1=83832 L2=5743 L3=0 Mem=6233 Bytes=816128 Wait=103224 Pf=5749
core1 L=4192 S=0 L1=5 L2=29 L3=168 Mem=3990 Bytes=265472 Wait=83452 Pf=0
core2 L=4044 S=0 L1=0 L2=0 L3=1 Mem=4043 Bytes=267200 Wait=86248 Pf=0
core3 L=16984 S=0 L1=0 L2=70 L3=541 Mem=16373 Bytes=1333504 Wait=2144 Pf=3753
L3 hits=710 miss=30639 evict=19753 wb=1770 inval=0 occ=40960
bus req=41911 bytes=2682304 busy=419110 wait=324362
issued=80692
streams=8
core0 L=64256 S=32128 L1=84336 L2=5767 L3=0 Mem=6281 Bytes=812096 Wait=89970 Pf=5773
core1 L=4245 S=0 L1=5 L2=29 L3=179 Mem=4032 Bytes=266240 Wait=73438 Pf=0
core2 L=4077 S=0 L1=0 L2=0 L3=0 Mem=4077 Bytes=270144 Wait=78614 Pf=0
core3 L=16984 S=0 L1=0 L2=12865 L3=151 Mem=3968 Bytes=1183040 Wait=1709 Pf=13862
L3 hits=330 miss=18358 evict=16211 wb=1562 inval=0 occ=40957
bus req=39555 bytes=2531520 busy=395550 wait=299472
issued=145124
`

func TestGoldenPrefetcherStreams(t *testing.T) {
	var b strings.Builder
	for _, streams := range []int{32, 8} {
		spec := machine.Scaled(8)
		spec.Prefetch.Streams = streams
		h := spec.NewSocket(21)
		e := engine.New(h, spec.MSHRs)
		alloc := mem.NewAlloc(spec.LineSize())

		e.PlaceDaemon(0, stream.New(stream.Config{
			ArrayBytes: spec.L3.Size * 2, ElemSize: 8, BatchElems: 16,
		}, alloc), 22)
		e.PlaceDaemon(1, synthetic.New(synthetic.Config{
			Dist: dist.NewNormal(spec.L3.Size, 8), ElemSize: 4, ComputePerLoad: 2,
		}, alloc), 23)
		e.PlaceDaemon(2, pchase.New(pchase.Config{
			BufBytes: spec.L3.Size * 3, LineSize: spec.LineSize(), Seed: 24,
		}, alloc), 25)
		e.PlaceDaemon(3, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 26)

		e.RunUntil(500_000)
		h.ResetStats()
		e.RunUntil(1_500_000)

		var issued int64
		for c := 0; c < 4; c++ {
			issued += h.PrefetcherIssued(c)
		}
		fmt.Fprintf(&b, "streams=%d\n%sissued=%d\n",
			streams, snapshotCounters(h, 4), issued)
	}
	if got := b.String(); got != goldenPrefetcher {
		t.Errorf("prefetcher counters drifted.\ngot:\n%s\nwant:\n%s", got, goldenPrefetcher)
	}
}

// goldenApps pins the end-to-end cluster results (wall seconds, rank miss
// rate, rank bandwidth) of the two §IV application proxies under storage and
// bandwidth interference.
const goldenApps = `mcb+cs2 sec=1.021768077e-03 miss=5.526638841e-01 gbs=2.822401742e-01
mcb+bw1 sec=1.027330000e-03 miss=5.487355757e-01 gbs=2.787186201e-01
lulesh+cs2 sec=8.401738462e-04 miss=0.000000000e+00 gbs=0.000000000e+00
lulesh+bw1 sec=8.410369231e-04 miss=4.608914409e-04 gbs=9.740357142e-03
`

func TestGoldenApplicationRuns(t *testing.T) {
	spec := machine.Scaled(8)
	var b strings.Builder
	run := func(name string, app cluster.App, kind core.Kind, threads int) {
		res, err := cluster.Run(cluster.RunConfig{
			Spec: spec, App: app, RanksPerSocket: 2,
			Interference: cluster.Interference{Kind: kind, Threads: threads},
			Iterations:   4, Warmup: 2, Homogeneous: true, NoiseStd: 0.005,
			Concurrency: 1, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&b, "%s sec=%.9e miss=%.9e gbs=%.9e\n",
			name, res.Seconds, res.RankL3MissRate, res.RankGBs)
	}
	run("mcb+cs2", mcb.New(mcb.DefaultParams(spec.L3.Size, 8, 2400)), core.Storage, 2)
	run("mcb+bw1", mcb.New(mcb.DefaultParams(spec.L3.Size, 8, 2400)), core.Bandwidth, 1)
	run("lulesh+cs2", lulesh.New(lulesh.DefaultParams(spec.L3.Size, 2, 22)), core.Storage, 2)
	run("lulesh+bw1", lulesh.New(lulesh.DefaultParams(spec.L3.Size, 2, 22)), core.Bandwidth, 1)
	if got := b.String(); got != goldenApps {
		t.Errorf("application results drifted.\ngot:\n%s\nwant:\n%s", got, goldenApps)
	}
}

// goldenOverlapped pins the MSHR-limited overlapped-load path (LoadOverlapped
// / the batched access fast path) on its own: one BWThr against an otherwise
// idle socket, no warmup reset, so cold-start transients are covered too.
const goldenOverlapped = `core0 L=10208 S=0 L1=0 L2=672 L3=2 Mem=9534 Bytes=809792 Wait=1176 Pf=3119
L3 hits=2 miss=9534 evict=0 wb=0 inval=0 occ=12653
bus req=12653 bytes=809792 busy=126530 wait=2222
work=10208 now=600599
`

func TestGoldenOverlappedLoads(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(11)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())
	e.PlaceDaemon(0, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 12)
	e.RunUntil(600_000)
	got := snapshotCounters(h, 1) +
		fmt.Sprintf("work=%d now=%d\n", e.Ctx(0).Work(), int64(e.Ctx(0).Now()))
	if got != goldenOverlapped {
		t.Errorf("overlapped-load counters drifted.\ngot:\n%s\nwant:\n%s", got, goldenOverlapped)
	}
}
