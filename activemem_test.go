package activemem

import (
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"activemem/internal/engine"
	"activemem/internal/mem"
)

func TestNewMachines(t *testing.T) {
	full := NewXeon20MB()
	if full.L3.Size != 20<<20 {
		t.Fatalf("Xeon20MB L3 = %d", full.L3.Size)
	}
	small := NewScaledXeon(8)
	if small.L3.Size != 20<<20/8 {
		t.Fatalf("Scaled(8) L3 = %d", small.L3.Size)
	}
}

func TestWithResources(t *testing.T) {
	m, err := WithResources(NewXeon20MB(), 10<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB rounds to the nearest valid geometry at or below.
	if m.L3.Size > 10<<20 || m.L3.Size < 5<<20 {
		t.Fatalf("custom L3 = %d", m.L3.Size)
	}
	if bw := m.PeakBandwidthGBs(); math.Abs(bw-8) > 0.7 {
		t.Fatalf("custom bandwidth = %v, want ~8", bw)
	}
	if !strings.Contains(m.Name, "custom") {
		t.Fatalf("name = %q", m.Name)
	}
	// Zero arguments leave the machine unchanged.
	m2, err := WithResources(NewXeon20MB(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.L3.Size != 20<<20 {
		t.Fatal("zero-valued WithResources changed the machine")
	}
}

func TestPatternNames(t *testing.T) {
	if PatternUniform.String() != "Uni" || PatternNormal8.String() != "Norm 8" {
		t.Fatal("pattern names")
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Fatal("unknown pattern name")
	}
}

func TestModelCheck(t *testing.T) {
	m := NewScaledXeon(8)
	pred, meas, err := ModelCheck(m, PatternUniform, m.L3.Size*2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0.3 || pred >= 0.7 {
		t.Fatalf("uniform 2x-L3 predicted miss = %v, want ~0.5", pred)
	}
	if math.Abs(pred-meas) > 0.10 {
		t.Fatalf("model error %.3f outside the Fig. 5 band (pred %.3f meas %.3f)",
			math.Abs(pred-meas), pred, meas)
	}
}

func TestMeasureProfileEndToEnd(t *testing.T) {
	m := NewScaledXeon(8)
	prof, err := MeasureProfile(m, "uniform-2x",
		PatternWorkload(PatternUniform, m.L3.Size*2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prof.App != "uniform-2x" || prof.Processes != 1 {
		t.Fatalf("profile header: %+v", prof)
	}
	// A 2x-L3 uniform scanner is both capacity- and bandwidth-hungry: its
	// bounds must be non-trivial and ordered.
	if prof.CapacityHigh <= 0 || prof.CapacityHigh < prof.CapacityLow {
		t.Fatalf("capacity bounds [%v, %v]", prof.CapacityLow, prof.CapacityHigh)
	}
	if prof.BandwidthHigh <= 0 || prof.BandwidthHigh < prof.BandwidthLow {
		t.Fatalf("bandwidth bounds [%v, %v]", prof.BandwidthLow, prof.BandwidthHigh)
	}
	// Predictions: full resources ≈ no slowdown; starved resources hurt.
	if s := prof.PredictSlowdown(float64(m.L3.Size), m.PeakBandwidthGBs()); s > 0.02 {
		t.Fatalf("full-resource prediction = %v", s)
	}
	starved := prof.PredictSlowdown(float64(m.L3.Size)/8, m.PeakBandwidthGBs()/3)
	if starved < 0.05 {
		t.Fatalf("starved prediction = %v, want meaningful slowdown", starved)
	}
	if !strings.Contains(prof.String(), "uniform-2x") {
		t.Fatal("profile rendering")
	}
}

// TestMeasureProfileBaselineOnceAndDeterministic proves the executor
// contract at the facade: one MeasureProfile call instantiates the
// application workload exactly once per distinct experiment — the storage
// sweep's six levels plus the bandwidth sweep's three, minus the shared
// k=0 baseline the memo cache deduplicates — and a wide worker pool
// reproduces the serial profile bit for bit.
func TestMeasureProfileBaselineOnceAndDeterministic(t *testing.T) {
	m := NewScaledXeon(8)
	wl := PatternWorkload(PatternUniform, m.L3.Size*2, 1)
	measure := func(concurrency int) (Profile, int64) {
		var calls atomic.Int64
		counting := func(alloc *mem.Alloc, seed uint64) engine.Workload {
			calls.Add(1)
			return wl(alloc, seed)
		}
		prof, err := MeasureProfile(m, "counted", counting,
			&MeasureOptions{Concurrency: concurrency})
		if err != nil {
			t.Fatal(err)
		}
		return prof, calls.Load()
	}
	serial, serialCalls := measure(1)
	parallel, parallelCalls := measure(8)
	// 6 storage levels + 3 bandwidth levels − 1 shared baseline = 8.
	if serialCalls != 8 || parallelCalls != 8 {
		t.Fatalf("app simulated %d/%d times (serial/parallel), want 8: baseline not shared",
			serialCalls, parallelCalls)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel profile diverges from serial:\n%+v\n%+v", serial, parallel)
	}
}

func TestPointerChaseProfileIsLatencyBound(t *testing.T) {
	m := NewScaledXeon(8)
	prof, err := MeasureProfile(m, "pchase", PointerChaseWorkload(m.L3.Size*4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A dependent-load chase misses everywhere but cannot exploit
	// bandwidth; its bandwidth-use upper bound must stay well below what a
	// streaming workload would show.
	if prof.BandwidthHigh > m.PeakBandwidthGBs() {
		t.Fatalf("pchase bandwidth bound %v exceeds peak", prof.BandwidthHigh)
	}
}

// TestPredictionCrossCheck validates the paper's §I claim end to end in a
// way the authors could not on real hardware: build a profile on one
// machine, predict the slowdown for a machine with half the cache, then
// actually simulate that machine and compare. The prediction interpolates a
// coarse interference curve, so tolerances are generous — the check is that
// the prediction is directionally right and within a factor of ~2.
func TestPredictionCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check is slow")
	}
	big := NewScaledXeon(8)    // 2.5 MB L3
	small := NewScaledXeon(16) // 1.25 MB L3, same bandwidth
	const buf = 5 << 20        // same absolute working set on both machines
	wl := PatternWorkload(PatternUniform, buf, 1)

	prof, err := MeasureProfile(big, "xcheck", wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	predicted := prof.PredictSlowdown(float64(small.L3.Size), small.PeakBandwidthGBs())

	// Direct measurement of the uninterfered baseline rate on both machines.
	measureRate := func(m Machine) float64 {
		r, err := BaselineRate(m, wl, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	bigRate := measureRate(big)
	smallRate := measureRate(small)
	actual := bigRate/smallRate - 1

	if actual <= 0 {
		t.Fatalf("halving the L3 did not slow the workload: big %v small %v", bigRate, smallRate)
	}
	if predicted <= 0 {
		t.Fatalf("profile predicted no slowdown (%v) but measured %v", predicted, actual)
	}
	ratio := predicted / actual
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("prediction %0.3f vs simulated %0.3f (ratio %.2f) outside tolerance",
			predicted, actual, ratio)
	}
}
