// Package activemem reproduces "Active Measurement of Memory Resource
// Consumption" (Casas & Bronevetsky, IPDPS 2014): it measures how much
// shared-cache storage and memory bandwidth a workload actively uses by
// running calibrated interference threads (the paper's CSThr and BWThr) on
// the spare cores of a simulated multicore socket and observing when the
// workload's performance degrades.
//
// This package is the user-facing facade. The typical workflow:
//
//	m := activemem.NewScaledXeon(8)                  // or NewXeon20MB()
//	wl := activemem.PatternWorkload(activemem.PatternUniform, 8<<20, 10)
//	prof, err := activemem.MeasureProfile(m, "myapp", wl, nil)
//	...
//	slowdown := prof.PredictSlowdown(10e6, 8.0)      // 10 MB L3, 8 GB/s
//
// The heavy machinery lives in the internal packages: a deterministic
// discrete-event multicore memory-hierarchy simulator (internal/mem,
// internal/engine), the interference threads and synthetic benchmarks of
// the paper's §II-III (internal/workload/...), the Expected Hit Rate model
// of Eq. 4 (internal/model), the measurement methodology itself
// (internal/core), and the cluster-level application studies of §IV
// (internal/cluster, internal/apps/...). The cmd/validate and cmd/appstudy
// binaries regenerate every table and figure of the paper's evaluation.
//
// Every experiment campaign — sweeps, calibration grids, app studies —
// schedules its independent cells through the shared executor subsystem
// (internal/lab): a bounded worker pool with content-addressed result
// memoization, so e.g. one MeasureProfile call simulates the uninterfered
// baseline exactly once even though the storage sweep, the bandwidth sweep
// and the bounds analysis all consume it, and produces bit-identical
// results at every concurrency (MeasureOptions.Concurrency).
package activemem

import (
	"fmt"

	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/model"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/pchase"
	"activemem/internal/workload/synthetic"
)

// Machine describes a simulated platform; construct one with NewXeon20MB,
// NewScaledXeon or WithResources.
type Machine = machine.Spec

// NewXeon20MB returns the paper's measurement platform: 8-core 2.6 GHz
// sockets with a shared, inclusive 20 MB L3 and ≈16.6 GB/s of memory
// bandwidth (Table I of the paper).
func NewXeon20MB() Machine { return machine.Xeon20MB() }

// NewScaledXeon returns the platform shrunk by factor f (a power of two):
// all caches divide by f while latencies and bandwidth stay fixed.
// Interference phenomena are preserved under this scaling, and experiments
// run ~f times faster; multiply measured capacities by f for full-machine
// equivalents.
func NewScaledXeon(f int) Machine { return machine.Scaled(f) }

// WithResources returns a copy of m with the shared-cache capacity and
// memory bandwidth adjusted — the "future thin-memory machine" the paper's
// prediction methodology targets. The capacity is rounded down to the
// nearest valid cache geometry (power-of-two set count).
func WithResources(m Machine, l3Bytes int64, busGBs float64) (Machine, error) {
	if l3Bytes > 0 {
		setBytes := m.L3.LineSize * int64(m.L3.Assoc)
		sets := int64(1)
		for sets*2*setBytes <= l3Bytes {
			sets *= 2
		}
		m.L3.Size = sets * setBytes
	}
	if busGBs > 0 {
		bpc := m.Clock.BytesPerCycle(busGBs)
		cycles := int64(float64(m.L3.LineSize)/bpc + 0.5)
		if cycles < 1 {
			cycles = 1
		}
		m.Bus.CyclesPerChunk = units.Cycles(cycles)
		m.Bus.BytesPerChunk = m.L3.LineSize
	}
	m.Name = fmt.Sprintf("%s[custom %s, %.1fGB/s]", m.Name,
		units.FormatBytes(m.L3.Size), m.PeakBandwidthGBs())
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// Workload is a deterministic state machine the simulator runs on one core;
// the provided constructors cover the paper's workload families, and custom
// workloads can implement the interface directly (see internal/engine).
type Workload = engine.Workload

// WorkloadFactory builds a fresh workload instance for one experiment run.
type WorkloadFactory = core.WorkloadFactory

// Profile is the methodology's product: per-process resource-use bounds and
// sensitivity curves, with PredictSlowdown for what-if machines.
type Profile = core.Profile

// Sweep holds the per-interference-level measurements behind a profile.
type Sweep = core.Sweep

// Pattern selects a Table II access distribution for PatternWorkload.
type Pattern int

// Access patterns (paper Table II).
const (
	PatternUniform Pattern = iota
	PatternNormal4
	PatternNormal6
	PatternNormal8
	PatternExponential4
	PatternExponential6
	PatternExponential8
	PatternTriangular1
	PatternTriangular2
	PatternTriangular3
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	names := []string{"Uni", "Norm 4", "Norm 6", "Norm 8", "Exp 4", "Exp 6",
		"Exp 8", "Tri 1", "Tri 2", "Tri 3"}
	if int(p) < len(names) {
		return names[p]
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// distFor builds the distribution over n elements.
func (p Pattern) distFor(n int64) dist.Dist {
	switch p {
	case PatternNormal4:
		return dist.NewNormal(n, 4)
	case PatternNormal6:
		return dist.NewNormal(n, 6)
	case PatternNormal8:
		return dist.NewNormal(n, 8)
	case PatternExponential4:
		return dist.NewExponential(n, 4)
	case PatternExponential6:
		return dist.NewExponential(n, 6)
	case PatternExponential8:
		return dist.NewExponential(n, 8)
	case PatternTriangular1:
		return dist.NewTriangular(n, 0.4)
	case PatternTriangular2:
		return dist.NewTriangular(n, 0.6)
	case PatternTriangular3:
		return dist.NewTriangular(n, 0.8)
	default:
		return dist.NewUniform(n)
	}
}

// PatternWorkload returns the paper's Fig. 4 probabilistic benchmark: each
// iteration samples a 4-byte element index of a bufBytes buffer from the
// pattern and performs computePerLoad integer additions.
func PatternWorkload(p Pattern, bufBytes int64, computePerLoad int) WorkloadFactory {
	return func(alloc *mem.Alloc, seed uint64) engine.Workload {
		return synthetic.New(synthetic.Config{
			Dist:           p.distFor(bufBytes / 4),
			ElemSize:       4,
			ComputePerLoad: computePerLoad,
		}, alloc)
	}
}

// PointerChaseWorkload returns a dependent-load latency probe over bufBytes.
func PointerChaseWorkload(bufBytes int64) WorkloadFactory {
	return func(alloc *mem.Alloc, seed uint64) engine.Workload {
		return pchase.New(pchase.Config{BufBytes: bufBytes, LineSize: 64, Seed: seed}, alloc)
	}
}

// MeasureOptions tunes MeasureProfile; the zero value (or nil pointer)
// selects sensible defaults.
type MeasureOptions struct {
	// MaxStorageThreads / MaxBandwidthThreads bound the interference sweeps
	// (paper limits: 5 CSThrs, 2 BWThrs — more bandwidth interference would
	// bleed into storage, §III-D). Zero selects the limits.
	MaxStorageThreads   int
	MaxBandwidthThreads int
	// Threshold is the slowdown fraction defining the degradation knee
	// (default 0.05).
	Threshold float64
	// Seed drives all stochastic components (default 1).
	Seed uint64
	// Processes divides the derived bounds (default 1).
	Processes int
	// Concurrency bounds how many experiment cells run at once: 0 selects
	// GOMAXPROCS, 1 runs serially. The measured profile is bit-identical
	// at every setting.
	Concurrency int
	// Progress, when non-nil, is called as cells of each experiment batch
	// complete (with the batch's label, the number done and the batch
	// size).
	Progress func(label string, done, total int)
	// CacheDir, when non-empty, backs the measurement with the persistent
	// content-addressed result store in that directory: finished cells are
	// written through, and cells already present — from an interrupted
	// earlier call, another process, or an imported bundle — are served
	// from disk without simulating, bit-identical to a cold run. Several
	// concurrent measurements (and the cmd/* CLIs) may share one
	// directory.
	CacheDir string
}

func (o *MeasureOptions) defaults() MeasureOptions {
	v := MeasureOptions{MaxStorageThreads: 5, MaxBandwidthThreads: 2,
		Threshold: 0.05, Seed: 1, Processes: 1}
	if o == nil {
		return v
	}
	out := *o
	if out.MaxStorageThreads == 0 {
		out.MaxStorageThreads = v.MaxStorageThreads
	}
	if out.MaxBandwidthThreads == 0 {
		out.MaxBandwidthThreads = v.MaxBandwidthThreads
	}
	if out.Threshold == 0 {
		out.Threshold = v.Threshold
	}
	if out.Seed == 0 {
		out.Seed = v.Seed
	}
	if out.Processes == 0 {
		out.Processes = v.Processes
	}
	return out
}

// measureWindows picks warmup/window cycles proportional to the machine's
// L3 size (steady state requires the cache population to turn over a few
// times): 30M/12M cycles at 2.5 MB, 240M/96M at the full 20 MB.
func measureWindows(m Machine) (warmup, window units.Cycles) {
	factor := units.Cycles(m.L3.Size / (20 * units.MB / 8))
	if factor < 1 {
		factor = 1
	}
	return 30_000_000 * factor, 12_000_000 * factor
}

// MeasureProfile runs the full Active Measurement workflow on one socket of
// m: a storage-interference sweep, a bandwidth-interference sweep, the
// §III-A and §III-C3 calibrations, and the §IV bounds analysis. All
// experiment cells run on one bounded executor whose memo cache
// deduplicates the shared uninterfered baseline across the sweeps.
func MeasureProfile(m Machine, name string, app WorkloadFactory, opts *MeasureOptions) (Profile, error) {
	o := opts.defaults()
	cache, err := lab.OpenCache(o.CacheDir)
	if err != nil {
		return Profile{}, err
	}
	if cache != nil {
		defer cache.Close()
	}
	ex := lab.New(lab.Config{Workers: o.Concurrency, Progress: o.Progress, Cache: cache})
	defer ex.Close()
	warmup, window := measureWindows(m)
	cfg := core.MeasureConfig{Spec: m, Warmup: warmup, Window: window, Seed: o.Seed}

	storage, err := core.RunSweep(core.SweepConfig{
		MeasureConfig: cfg, Kind: core.Storage,
		MaxThreads: o.MaxStorageThreads, Exec: ex,
	}, name, app)
	if err != nil {
		return Profile{}, err
	}
	bandwidth, err := core.RunSweep(core.SweepConfig{
		MeasureConfig: cfg, Kind: core.Bandwidth,
		MaxThreads: o.MaxBandwidthThreads, Exec: ex,
	}, name, app)
	if err != nil {
		return Profile{}, err
	}

	bufs, _ := core.DefaultCalibrationGrid(m, 2)
	capCal, err := core.CalibrateCapacity(core.CalibrationConfig{
		MeasureConfig: cfg, MaxThreads: o.MaxStorageThreads,
		BufferBytes: bufs,
		Dists: []func(int64) dist.Dist{
			func(n int64) dist.Dist { return dist.NewUniform(n) },
		},
		ComputePerLoad: 1, ElemSize: 4, Exec: ex,
	})
	if err != nil {
		return Profile{}, err
	}
	bwCal, err := core.CalibrateBandwidth(core.MeasureConfig{
		Spec: m, Warmup: 2_000_000, Window: 6_000_000, Seed: o.Seed,
	}, o.MaxBandwidthThreads, interfere.BWConfig{}, ex)
	if err != nil {
		return Profile{}, err
	}
	return core.BuildProfile(name, o.Processes, o.Threshold,
		storage, capCal.AvailableBytes(), bandwidth, bwCal.AvailableGBs)
}

// BaselineRate measures the workload's uninterfered work rate (work units
// per second) on one socket of m. Comparing baseline rates across machines
// is how prediction cross-checks validate PredictSlowdown: something the
// paper could only do by buying the other machine.
func BaselineRate(m Machine, app WorkloadFactory, seed uint64) (float64, error) {
	if seed == 0 {
		seed = 1
	}
	warmup, window := measureWindows(m)
	metrics, err := core.MeasureWithInterference(
		core.MeasureConfig{Spec: m, Warmup: warmup, Window: window, Seed: seed},
		app, core.Storage, 0, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		return 0, err
	}
	return metrics.Rate, nil
}

// ModelCheck runs the paper's Fig. 5 validation for one configuration: it
// returns Eq. 4's predicted L3 miss rate for the pattern and buffer on m,
// and the miss rate the simulator actually measures with no interference.
func ModelCheck(m Machine, p Pattern, bufBytes int64, seed uint64) (predicted, measured float64, err error) {
	if seed == 0 {
		seed = 1
	}
	d := p.distFor(bufBytes / 4)
	warmup, window := measureWindows(m)
	metrics, err := core.MeasureWithInterference(
		core.MeasureConfig{Spec: m, Warmup: warmup, Window: window, Seed: seed},
		func(alloc *mem.Alloc, _ uint64) engine.Workload {
			return synthetic.New(synthetic.Config{Dist: d, ElemSize: 4, ComputePerLoad: 1}, alloc)
		},
		core.Storage, 0, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		return 0, 0, err
	}
	sumSq := dist.SumSquaredLineMass(d, m.LineSize()/4)
	predicted = model.MissRate(float64(m.L3.Size/m.LineSize()), sumSq)
	return predicted, metrics.L3MissRate, nil
}
