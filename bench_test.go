// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the same rows via internal/experiments, printed
// once per run), plus ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Benches use the smoke grid on the 1/8-scale machine so the whole harness
// completes in minutes; cmd/validate and cmd/appstudy run the larger grids.
package activemem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"activemem/internal/apps/mcb"
	"activemem/internal/cluster"
	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/experiments"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/model"
	"activemem/internal/trace"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/pchase"
	"activemem/internal/workload/stream"
	"activemem/internal/workload/synthetic"
	"activemem/internal/xrand"
)

var benchOpt = experiments.Options{Scale: 8, Grid: experiments.GridSmoke, Seed: 1}

// printOnce guards the row dumps so repeated b.N iterations stay readable.
var printOnce sync.Map

func dump(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := machine.Xeon20MB()
		if err := spec.Validate(); err != nil {
			b.Fatal(err)
		}
		dump(b, "table1", experiments.TableI(experiments.Options{Scale: 1}))
	}
}

func BenchmarkTable2Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dump(b, "table2", experiments.TableII(benchOpt).String())
	}
}

func BenchmarkSec3ABandwidthCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.SecIIIA(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "sec3a", r.Table().String())
		b.ReportMetric(r.Cal.ConsumedGBs[1], "GB/s-per-BWThr")
	}
}

func BenchmarkSec3CCapacityCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		capAvail, _, err := experiments.StudyCalibrations(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		t := "§III-C3 effective capacity (MB) per CSThr count:"
		for _, v := range capAvail {
			t += fmt.Sprintf(" %.2f", v/(1<<20))
		}
		dump(b, "sec3c", t)
		b.ReportMetric(capAvail[1]/(1<<20), "MB-left-at-1CSThr")
	}
}

func BenchmarkFig5ModelError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "fig5", r.Table().String())
		b.ReportMetric(r.Rows[len(r.Rows)-1].MeanAbsErr, "mean-abs-err")
	}
}

func BenchmarkFig6EffectiveCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		out := ""
		for _, t := range r.Tables() {
			out += t.String()
		}
		dump(b, "fig6", out)
	}
}

func BenchmarkFig7BWThrUnderCSThr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "fig7", r.Table().String())
		b.ReportMetric(r.Rows[5].BWGBs/r.Rows[0].BWGBs, "flatness-ratio")
	}
}

func BenchmarkFig8CSThrUnderBWThr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "fig8", r.Table().String())
		b.ReportMetric(r.Rows[5].NsPerOp/r.Rows[0].NsPerOp, "degradation-at-5BWThr")
	}
}

func BenchmarkFig9MCBDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9MCB(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		out := ""
		for _, t := range r.Tables() {
			out += t.String() + "\n"
		}
		dump(b, "fig9", out)
	}
}

func BenchmarkFig10MCBProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		capAvail, bwAvail, err := experiments.StudyCalibrations(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		study, err := experiments.Fig9MCB(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := experiments.BuildProfiles(benchOpt, study, capAvail, bwAvail, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "fig10", prof.Table().String())
	}
}

func BenchmarkFig11LuleshDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11Lulesh(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		out := ""
		for _, t := range r.Tables() {
			out += t.String() + "\n"
		}
		dump(b, "fig11", out)
	}
}

func BenchmarkFig12LuleshProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		capAvail, bwAvail, err := experiments.StudyCalibrations(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		study, err := experiments.Fig11Lulesh(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := experiments.BuildProfiles(benchOpt, study, capAvail, bwAvail, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		dump(b, "fig12", prof.Table().String())
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §6).

// csOccupancy measures what fraction of its buffer a CSThr pins in an L3
// with the given replacement policy.
func csOccupancy(policy mem.Policy) float64 {
	spec := machine.Scaled(8)
	spec.L3.Policy = policy
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	cs := interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, cs, 2)
	// A competing scanner provides eviction pressure.
	e.PlaceDaemon(1, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 3)
	e.RunUntil(20_000_000)
	lo, hi := cs.BufferRange(64)
	return float64(h.L3.CountLinesIn(lo, hi)) / float64(hi-lo)
}

func BenchmarkAblationReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lru := csOccupancy(mem.PolicyLRU)
		fifo := csOccupancy(mem.PolicyFIFO)
		random := csOccupancy(mem.PolicyRandom)
		dump(b, "ablation-replacement", fmt.Sprintf(
			"Ablation: CSThr buffer retention under a concurrent BWThr\n"+
				"  LRU    %.3f\n  FIFO   %.3f\n  Random %.3f\n"+
				"(the paper's pinning mechanism needs recency: LRU retains most)",
			lru, fifo, random))
		b.ReportMetric(lru-random, "LRU-advantage")
	}
}

// triadGBs measures single-core triad bandwidth with/without prefetch.
func triadGBs(prefetch bool) float64 {
	spec := machine.Scaled(8)
	spec.Prefetch.Enabled = prefetch
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	tr := stream.New(stream.Config{ArrayBytes: 8 << 20, ElemSize: 8, BatchElems: 16}, mem.NewAlloc(64))
	e.PlaceDaemon(0, tr, 3)
	e.RunUntil(1_000_000)
	h.ResetStats()
	e.RunUntil(5_000_000)
	return spec.Clock.BandwidthGBs(h.Bus.Stats.Bytes, 4_000_000)
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, off := triadGBs(true), triadGBs(false)
		dump(b, "ablation-prefetch", fmt.Sprintf(
			"Ablation: single-core triad bandwidth\n  prefetch on  %.2f GB/s\n  prefetch off %.2f GB/s",
			on, off))
		b.ReportMetric(on/off, "prefetch-speedup")
	}
}

// rateWithInclusion measures an L2-resident pointer chase's hop rate under
// storage interference with and without inclusive back-invalidation — the
// textbook inclusion victim: the chase hits its private L2 and never
// refreshes its L3 copies, so under an inclusive L3 the interference evicts
// those stale copies and back-invalidation destroys the L2-resident data.
func rateWithInclusion(inclusive bool) float64 {
	spec := machine.Scaled(8)
	spec.Inclusive = inclusive
	cfg := core.MeasureConfig{Spec: spec, Warmup: 20_000_000, Window: 8_000_000, Seed: 1}
	m, err := core.MeasureWithInterference(cfg,
		PointerChaseWorkload(24<<10), // fits the 32 KB L2
		core.Storage, 5, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		panic(err)
	}
	return m.Rate
}

func BenchmarkAblationInclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		incl, excl := rateWithInclusion(true), rateWithInclusion(false)
		dump(b, "ablation-inclusion", fmt.Sprintf(
			"Ablation: L2-resident pointer chase under 5 CSThrs\n  inclusive L3     %.4g hops/s\n  non-inclusive L3 %.4g hops/s\n(back-invalidation reaches into private caches; non-inclusive L3 shields them)",
			incl, excl))
		b.ReportMetric(excl/incl, "non-inclusive-advantage")
	}
}

func BenchmarkAblationCappedModel(b *testing.B) {
	// Model ablation: the capped refinement vs the paper's linear Eq. 4 on
	// the peaked Norm 8 pattern, in the small-buffer regime where the paper
	// concedes its model is biased and in a larger one where hot lines
	// saturate.
	spec := machine.Scaled(8)
	out := "Ablation: Norm 8 — linear Eq.4 vs capped refinement\n"
	var improvement float64
	for _, mult := range []int64{3, 5} { // buffer = mult/2 × L3
		buf := spec.L3.Size * mult / 2
		pred, measured, err := ModelCheck(spec, PatternNormal8, buf, 1)
		if err != nil {
			b.Fatal(err)
		}
		d := dist.NewNormal(buf/4, 8)
		masses := dist.LineMasses(d, 16)
		capped := model.CappedMissRate(masses, float64(spec.L3.Size/64))
		out += fmt.Sprintf(
			"  %.1fx L3: measured %.3f | linear %.3f (err %.3f) | capped %.3f (err %.3f)\n",
			float64(mult)/2, measured, pred, abs(pred-measured), capped, abs(capped-measured))
		improvement += abs(pred-measured) - abs(capped-measured)
	}
	for i := 0; i < b.N; i++ {
		dump(b, "ablation-capped", out)
		b.ReportMetric(improvement/2, "mean-capped-improvement")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkAblationHomogeneous(b *testing.B) {
	spec := machine.Scaled(8)
	run := func(hom bool) float64 {
		app := mcb.New(mcb.DefaultParams(spec.L3.Size, 8, 2400))
		res, err := cluster.Run(cluster.RunConfig{
			Spec: spec, App: app, RanksPerSocket: 1,
			Interference: cluster.Interference{Kind: core.Storage, Threads: 2},
			Iterations:   8, Warmup: 4, Homogeneous: hom, NoiseStd: 0.005, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Seconds
	}
	for i := 0; i < b.N; i++ {
		exact, hom := run(false), run(true)
		dump(b, "ablation-homogeneous", fmt.Sprintf(
			"Ablation: MCB 8 ranks, exact vs homogeneous socket simulation\n  exact        %.4g s\n  homogeneous  %.4g s (drift %.1f%%)",
			exact, hom, (hom/exact-1)*100))
		b.ReportMetric(abs(hom/exact-1)*100, "drift-%")
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the substrate's hot paths.

// benchObserve drives Prefetcher.Observe with a precomputed line sequence —
// the per-L1-miss training call that dominates random-access (CSThr)
// workloads.
func benchObserve(b *testing.B, lines []mem.Line) {
	p := mem.NewPrefetcher(mem.DefaultPrefetch())
	mask := len(lines) - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(lines[i&mask])
	}
}

func BenchmarkPrefetcherObserveSequential(b *testing.B) {
	lines := make([]mem.Line, 1<<16)
	for i := range lines {
		lines[i] = mem.Line(i)
	}
	benchObserve(b, lines)
}

func BenchmarkPrefetcherObserveStrided(b *testing.B) {
	// Eight interleaved constant-stride buffers (BWThr-style): every stream
	// trains and keeps emitting, exercising the match path.
	lines := make([]mem.Line, 1<<16)
	for i := range lines {
		s := i % 8
		lines[i] = mem.Line(1_000_000*s + (i/8)*641)
	}
	benchObserve(b, lines)
}

func BenchmarkPrefetcherObserveRandom(b *testing.B) {
	// CSThr-style uniform random lines: no stream ever confirms, so every
	// call takes the nearest-scan-miss + LRU-allocate path.
	r := xrand.New(7)
	lines := make([]mem.Line, 1<<16)
	for i := range lines {
		lines[i] = mem.Line(r.Intn(1 << 22))
	}
	benchObserve(b, lines)
}

// BenchmarkPrefetcherAllocate forces the LRU stream-allocation path on every
// call: consecutive lines land in distinct far-apart regions (more regions
// than stream slots), so no observation ever matches a tracked stream and
// each one evicts the least recently used slot.
func BenchmarkPrefetcherAllocate(b *testing.B) {
	lines := make([]mem.Line, 1<<16)
	for i := range lines {
		// 64 regions, each 1<<24 lines apart (far beyond the 2048 window);
		// successive visits to a region drift so the same line never repeats.
		lines[i] = mem.Line(int64(i%64)<<24 + int64(i/64)*5000)
	}
	benchObserve(b, lines)
}

// BenchmarkPChaseStep measures engine stepping of the dependent-load pointer
// chase at its default single-hop batch — the unbatchable per-access path
// (one L1-missing load per step through the counter tally).
func BenchmarkPChaseStep(b *testing.B) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	e.PlaceDaemon(0, pchase.New(pchase.Config{
		BufBytes: spec.L3.Size * 4, LineSize: spec.LineSize(), Seed: 2,
	}, alloc), 3)
	horizon := units.Cycles(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += 1000
		e.RunUntil(horizon)
	}
}

// BenchmarkExecutorBatchChurn measures the executor's per-batch dispatch
// cost: many small batches of trivial jobs on one executor, the shape of a
// campaign's sweep ladders and calibration batches.
func BenchmarkExecutorBatchChurn(b *testing.B) {
	ex := lab.New(lab.Config{Workers: 8})
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Run(8, func(j int) error {
			sink.Add(int64(j))
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ex.Close()
}

// BenchmarkCampaignSweepLadder is a multi-batch campaign in miniature — the
// cmd/activemem shape: a storage sweep, a bandwidth sweep and both §III
// calibration ladders scheduled on one executor (explicitly 4-wide, so the
// pool engages even on single-CPU hosts), whose batches all reuse one
// resident worker pool.
func BenchmarkCampaignSweepLadder(b *testing.B) {
	spec := machine.Scaled(8)
	cfg := core.MeasureConfig{Spec: spec, Warmup: 2_000_000, Window: 1_000_000, Seed: 1}
	app := func(alloc *mem.Alloc, seed uint64) engine.Workload {
		return synthetic.New(synthetic.Config{
			Dist: dist.NewUniform(spec.L3.Size * 2 / 4), ElemSize: 4, ComputePerLoad: 1,
		}, alloc)
	}
	var reuses int
	for i := 0; i < b.N; i++ {
		// A fresh executor per iteration: sharing one would let memoization
		// collapse every iteration after the first to pure cache hits.
		ex := lab.New(lab.Config{Workers: 4})
		if _, err := core.RunSweep(core.SweepConfig{
			MeasureConfig: cfg, Kind: core.Storage, MaxThreads: 5, Exec: ex,
		}, "churn", app); err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunSweep(core.SweepConfig{
			MeasureConfig: cfg, Kind: core.Bandwidth, MaxThreads: 2, Exec: ex,
		}, "churn", app); err != nil {
			b.Fatal(err)
		}
		if _, err := core.CalibrateBandwidth(cfg, 2, interfere.BWConfig{}, ex); err != nil {
			b.Fatal(err)
		}
		bufs, _ := core.DefaultCalibrationGrid(spec, 2)
		ds := core.Table2Constructors()
		if _, err := core.CalibrateCapacity(core.CalibrationConfig{
			MeasureConfig: cfg, MaxThreads: 2, BufferBytes: bufs,
			Dists:          []func(int64) dist.Dist{ds[9]},
			ComputePerLoad: 1, ElemSize: 4, Exec: ex,
		}); err != nil {
			b.Fatal(err)
		}
		reuses = ex.Stats().GroupReuses
		ex.Close()
	}
	b.ReportMetric(float64(reuses), "pool-reuses")
}

// BenchmarkClusterIteration measures exact-mode bulk-synchronous iterations:
// 4 simulated sockets × 6 iterations per Run, the loop whose per-iteration
// scheduling setup the persistent worker group eliminates.
func BenchmarkClusterIteration(b *testing.B) {
	spec := machine.Scaled(8)
	for i := 0; i < b.N; i++ {
		app := mcb.New(mcb.DefaultParams(spec.L3.Size, 8, 2400))
		_, err := cluster.Run(cluster.RunConfig{
			Spec: spec, App: app, RanksPerSocket: 2,
			Interference: cluster.Interference{Kind: core.Storage, Threads: 2},
			Iterations:   6, Warmup: 2, Homogeneous: false, NoiseStd: 0.005,
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	now := units.Cycles(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, lat := h.Access(0, mem.Addr(i*64%(8<<20)), now, false)
		now += lat
	}
}

func BenchmarkEngineCSThrStep(b *testing.B) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	e.PlaceDaemon(0, interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc), 2)
	horizon := units.Cycles(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		horizon += 1000
		e.RunUntil(horizon)
	}
}

// BenchmarkBaselineEklov compares the paper's interference threads against
// the §V baselines (Eklov et al.'s Cache Pirate and Bandwidth Bandit): the
// bandit steals bandwidth but with an unvalidated capacity side effect,
// which is the paper's core criticism.
func BenchmarkBaselineEklov(b *testing.B) {
	spec := machine.Scaled(8)
	run := func(place func(e *engine.Engine, alloc *mem.Alloc) (lo, hi mem.Line)) (gbs, heldFrac float64) {
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		alloc := mem.NewAlloc(64)
		lo, hi := place(e, alloc)
		e.RunUntil(10_000_000)
		h.ResetStats()
		e.RunUntil(16_000_000)
		gbs = spec.Clock.BandwidthGBs(h.PerCore[0].BusBytes, 6_000_000)
		if hi > lo {
			heldFrac = float64(h.L3.CountLinesIn(lo, hi)) / float64(hi-lo)
		}
		return gbs, heldFrac
	}
	for i := 0; i < b.N; i++ {
		bwGBs, _ := run(func(e *engine.Engine, alloc *mem.Alloc) (mem.Line, mem.Line) {
			e.PlaceDaemon(0, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 2)
			return 0, 0
		})
		banditGBs, _ := run(func(e *engine.Engine, alloc *mem.Alloc) (mem.Line, mem.Line) {
			e.PlaceDaemon(0, interfere.NewBandit(interfere.DefaultBanditConfig(spec.L3.Size), alloc), 2)
			return 0, 0
		})
		_, csHeld := run(func(e *engine.Engine, alloc *mem.Alloc) (mem.Line, mem.Line) {
			cs := interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc)
			e.PlaceDaemon(0, cs, 2)
			return cs.BufferRange(64)
		})
		_, pirateHeld := run(func(e *engine.Engine, alloc *mem.Alloc) (mem.Line, mem.Line) {
			p := interfere.NewPirate(interfere.DefaultPirateConfig(spec.L3.Size), alloc)
			e.PlaceDaemon(0, p, 2)
			return p.BufferRange(64)
		})
		dump(b, "baseline-eklov", fmt.Sprintf(
			"Baselines (§V): paper's threads vs Eklov et al.\n"+
				"  bandwidth theft:  BWThr %.2f GB/s | Bandit %.2f GB/s\n"+
				"  capacity pinning: CSThr %.3f of buffer | Pirate %.3f of buffer",
			bwGBs, banditGBs, csHeld, pirateHeld))
		b.ReportMetric(bwGBs/banditGBs, "BWThr-vs-Bandit")
	}
}

// BenchmarkReuseDistanceProfiles measures the interference threads' reuse
// distance profiles (internal/trace): the quantitative reason CSThr pins
// capacity (distances below the L3's line count) while BWThr can only
// stream (distances beyond any cache).
func BenchmarkReuseDistanceProfiles(b *testing.B) {
	spec := machine.Scaled(8)
	l3Lines := spec.L3.Size / 64
	profile := func(mk func(alloc *mem.Alloc) engine.Workload) *trace.Recorder {
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		alloc := mem.NewAlloc(64)
		e.PlaceDaemon(0, mk(alloc), 2)
		rec := trace.NewRecorder(1 << 18)
		defer rec.Attach(h, 0)()
		e.RunUntil(10_000_000)
		return rec
	}
	for i := 0; i < b.N; i++ {
		cs := profile(func(alloc *mem.Alloc) engine.Workload {
			return interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc)
		})
		bw := profile(func(alloc *mem.Alloc) engine.Workload {
			return interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc)
		})
		dump(b, "reuse-distance", fmt.Sprintf(
			"Reuse distances vs the L3's %d lines:\n"+
				"  CSThr: median %d, ideal-LRU L3 hit fraction %.3f\n"+
				"  BWThr: median %d, ideal-LRU L3 hit fraction %.3f",
			l3Lines, cs.MedianDistance(), cs.HitFraction(l3Lines),
			bw.MedianDistance(), bw.HitFraction(l3Lines)))
		b.ReportMetric(cs.HitFraction(l3Lines)-bw.HitFraction(l3Lines), "pin-vs-stream-gap")
	}
}
