// Quickstart: measure how much shared cache and memory bandwidth a workload
// actively uses, then predict its slowdown on a leaner machine.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"activemem"
)

func main() {
	// A 1/8-scale Xeon20MB keeps the demo fast; multiply capacities by 8
	// for full-machine equivalents.
	m := activemem.NewScaledXeon(8)
	fmt.Println(m.TableI())

	// The workload: uniform random reads over a buffer twice the L3 with
	// 10 integer additions per load — a typical cache-pressured kernel.
	wl := activemem.PatternWorkload(activemem.PatternUniform, m.L3.Size*2, 10)

	fmt.Println("measuring (storage and bandwidth interference sweeps)...")
	prof, err := activemem.MeasureProfile(m, "uniform-2xL3", wl, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prof.String())

	// What happens on a machine with half the cache and 60% the bandwidth?
	l3 := float64(m.L3.Size) / 2
	bw := m.PeakBandwidthGBs() * 0.6
	fmt.Printf("predicted slowdown with %.1f MB L3 and %.1f GB/s: %.1f%%\n",
		l3/(1<<20), bw, prof.PredictSlowdown(l3, bw)*100)
}
