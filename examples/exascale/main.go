// Exascale what-if: the paper's motivation is that future machines will
// offer one to two orders of magnitude less memory capacity and bandwidth
// per core [13]. This example profiles a workload on today's machine and
// predicts its performance across a grid of leaner future configurations —
// the §I use case "predict performance for future memory-constrained
// architectures".
//
// Run with:
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"

	"activemem"
)

func main() {
	today := activemem.NewScaledXeon(8)
	wl := activemem.PatternWorkload(activemem.PatternExponential4, today.L3.Size*2, 10)

	fmt.Printf("profiling on %s...\n", today.Name)
	prof, err := activemem.MeasureProfile(today, "exp4-2xL3", wl, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prof.String())

	fmt.Println("predicted slowdown on future machines (rows: L3 fraction; cols: bandwidth fraction):")
	capFracs := []float64{1, 0.5, 0.25, 0.125}
	bwFracs := []float64{1, 0.5, 0.33, 0.2}
	fmt.Printf("%8s", "")
	for _, bf := range bwFracs {
		fmt.Printf("  bw x%-5.2f", bf)
	}
	fmt.Println()
	for _, cf := range capFracs {
		fmt.Printf("L3 x%-4.2f", cf)
		for _, bf := range bwFracs {
			s := prof.PredictSlowdown(
				float64(today.L3.Size)*cf,
				today.PeakBandwidthGBs()*bf)
			fmt.Printf("  %+7.1f%%", s*100)
		}
		fmt.Println()
	}

	// Sanity-check one prediction against a direct simulation of the lean
	// machine (something the paper could not do on real hardware).
	lean, err := activemem.WithResources(today, today.L3.Size/4, today.PeakBandwidthGBs()/3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidating the L3 x0.25 / bw x0.33 cell by direct simulation on %s...\n", lean.Name)
	leanProf, err := activemem.MeasureProfile(lean, "exp4-2xL3", wl, nil)
	if err != nil {
		log.Fatal(err)
	}
	predicted := prof.PredictSlowdown(float64(lean.L3.Size), lean.PeakBandwidthGBs())
	// Compare uninterfered throughput on both machines via the sweeps'
	// baselines embedded in the profiles' curves: report the prediction and
	// leave judgement to the reader alongside the lean profile.
	fmt.Printf("prediction from today's profile: %+.1f%%\n", predicted*100)
	fmt.Println(leanProf.String())
}
