// Distexplorer: reproduce the paper's §III-C model validation for any
// single access pattern — compare the Expected Hit Rate model (Eq. 4)
// against the simulator across buffer sizes, the per-pattern slice of
// Fig. 5.
//
// Run with:
//
//	go run ./examples/distexplorer [-pattern norm8] [-scale 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"activemem"
)

var patterns = map[string]activemem.Pattern{
	"uniform": activemem.PatternUniform,
	"norm4":   activemem.PatternNormal4,
	"norm6":   activemem.PatternNormal6,
	"norm8":   activemem.PatternNormal8,
	"exp4":    activemem.PatternExponential4,
	"exp6":    activemem.PatternExponential6,
	"exp8":    activemem.PatternExponential8,
	"tri1":    activemem.PatternTriangular1,
	"tri2":    activemem.PatternTriangular2,
	"tri3":    activemem.PatternTriangular3,
}

func main() {
	pat := flag.String("pattern", "norm8", "access pattern: uniform, norm4/6/8, exp4/6/8, tri1/2/3")
	scale := flag.Int("scale", 8, "machine scale divisor")
	flag.Parse()

	p, ok := patterns[*pat]
	if !ok {
		log.Fatalf("unknown pattern %q", *pat)
	}
	m := activemem.NewScaledXeon(*scale)
	fmt.Printf("machine: %s (L3 %.2f MB)\n", m.Name, float64(m.L3.Size)/(1<<20))
	fmt.Printf("pattern: %s\n\n", p)
	fmt.Printf("%-12s  %-10s  %-10s  %-8s\n", "buffer", "Eq.4 miss", "simulated", "abs err")

	// The paper's Fig. 5 range: buffers from 1.5x to 3.7x the L3.
	for _, numerator := range []int64{3, 4, 5, 6, 7} {
		buf := m.L3.Size * numerator / 2
		pred, meas, err := activemem.ModelCheck(m, p, buf, 1)
		if err != nil {
			log.Fatal(err)
		}
		diff := pred - meas
		if diff < 0 {
			diff = -diff
		}
		fmt.Printf("%-12s  %-10.3f  %-10.3f  %-8.3f\n",
			fmt.Sprintf("%.2f MB", float64(buf)/(1<<20)), pred, meas, diff)
	}
	fmt.Println("\nThe paper's Fig. 5 band: mean error under ~10%, shrinking with buffer size.")
}
