// Colocation: use Active Measurement profiles to decide whether two
// workloads can share a socket without hurting each other — the paper's
// "more intelligent work scheduling" use case (§IV), in the spirit of the
// bubble-up co-location work it cites [14].
//
// Run with:
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"activemem"
)

func main() {
	m := activemem.NewScaledXeon(8)

	candidates := []struct {
		name string
		wl   activemem.WorkloadFactory
	}{
		// A compute-heavy kernel whose hot set is a small slice of the L3.
		{"hot-small", activemem.PatternWorkload(activemem.PatternNormal8, m.L3.Size/8, 100)},
		// A bandwidth hog: streams far more data than the cache holds.
		{"streaming-big", activemem.PatternWorkload(activemem.PatternUniform, m.L3.Size*4, 1)},
		// A latency-bound pointer chase.
		{"chaser", activemem.PointerChaseWorkload(m.L3.Size * 2)},
	}

	fmt.Println("profiling candidates...")
	profiles := make([]activemem.Profile, len(candidates))
	for i, c := range candidates {
		p, err := activemem.MeasureProfile(m, c.name, c.wl, nil)
		if err != nil {
			log.Fatal(err)
		}
		profiles[i] = p
		fmt.Println(p.String())
	}

	// Pairwise co-location check: both fit if their estimated demands (the
	// midpoint of each profile's bounds) sum within the socket's resources
	// with a safety margin.
	const margin = 0.9
	capBudget := float64(m.L3.Size) * margin
	bwBudget := m.PeakBandwidthGBs() * margin
	capMid := func(p activemem.Profile) float64 { return (p.CapacityLow + p.CapacityHigh) / 2 }
	bwMid := func(p activemem.Profile) float64 { return (p.BandwidthLow + p.BandwidthHigh) / 2 }
	fmt.Println("pairwise co-location verdicts:")
	for i := 0; i < len(profiles); i++ {
		for j := i + 1; j < len(profiles); j++ {
			a, b := profiles[i], profiles[j]
			fits := capMid(a)+capMid(b) <= capBudget && bwMid(a)+bwMid(b) <= bwBudget
			verdict := "SHARE a socket"
			if !fits {
				verdict = "keep APART"
			}
			fmt.Printf("  %-14s + %-14s -> %s (cap %.2f+%.2f of %.2f MB, bw %.1f+%.1f of %.1f GB/s)\n",
				a.App, b.App, verdict,
				capMid(a)/(1<<20), capMid(b)/(1<<20), capBudget/(1<<20),
				bwMid(a), bwMid(b), bwBudget)
		}
	}
}
