package activemem

// Golden↔schema coupling: lab.ResultSchemaVersion stamps every persisted
// experiment result, and the golden snapshots in golden_test.go define what
// a simulator generation computes. The two must move together — reusing a
// schema version after the goldens changed would let a shared cache dir
// serve results from a semantically different simulator. goldens.sha256
// records the fingerprint of the golden snapshots for every schema version
// ever shipped; this test (and hence CI) fails when the pairing drifts.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"activemem/internal/lab"
)

// goldenFingerprint hashes every golden snapshot constant in a fixed order.
// Adding a snapshot changes the fingerprint too; that is deliberate — the
// recorded line must then be updated consciously (values unchanged, only
// coverage added) or the schema version bumped (values changed).
func goldenFingerprint() string {
	h := sha256.New()
	for _, s := range []string{
		goldenMixedSocket,
		goldenRandomPolicy,
		goldenPrefetcher,
		goldenApps,
		goldenOverlapped,
	} {
		h.Write([]byte(s))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenFingerprintMatchesSchemaVersion(t *testing.T) {
	const file = "goldens.sha256"
	f, err := os.Open(file)
	if err != nil {
		t.Fatalf("open %s: %v", file, err)
	}
	defer f.Close()

	recorded := map[string]string{}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			t.Fatalf("%s:%d: want \"<schema-version> <sha256>\", got %q", file, line, text)
		}
		version, sum := fields[0], fields[1]
		if prev, dup := recorded[version]; dup && prev != sum {
			t.Fatalf("%s: schema version %q recorded with two different fingerprints", file, version)
		}
		recorded[version] = sum
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read %s: %v", file, err)
	}

	got := goldenFingerprint()
	want, ok := recorded[lab.ResultSchemaVersion]
	if !ok {
		t.Fatalf("schema version %q has no recorded golden fingerprint; append this line to %s:\n%s %s",
			lab.ResultSchemaVersion, file, lab.ResultSchemaVersion, got)
	}
	if want != got {
		t.Fatalf("golden snapshots no longer match the fingerprint recorded for schema version %q.\n"+
			"recorded: %s\ncurrent:  %s\n"+
			"If snapshot VALUES changed, simulator semantics changed: bump lab.ResultSchemaVersion "+
			"(internal/lab/cache.go) and append \"<new-version> %s\" to %s.\n"+
			"If you only ADDED snapshots (values untouched), update the %q line in place.",
			lab.ResultSchemaVersion, want, got, got, file, lab.ResultSchemaVersion)
	}
}

// TestGoldenFingerprintSelfCheck pins the fingerprint definition itself: a
// one-byte change to any golden must change the fingerprint, and the
// snapshot order must matter (swapping two snapshots is a different
// simulator history, not a reordering artefact).
func TestGoldenFingerprintSelfCheck(t *testing.T) {
	hash := func(parts ...string) string {
		h := sha256.New()
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0x1f})
		}
		return hex.EncodeToString(h.Sum(nil))
	}
	if hash("a", "b") == hash("b", "a") {
		t.Fatal("fingerprint ignores snapshot order")
	}
	if hash("a", "b") == hash("ab") || hash("a", "b") == hash("a", "b"+"\n") {
		t.Fatal("fingerprint does not separate snapshots")
	}
	if goldenFingerprint() == fmt.Sprintf("%x", sha256.Sum256(nil)) {
		t.Fatal("fingerprint of real goldens collides with empty hash")
	}
}
